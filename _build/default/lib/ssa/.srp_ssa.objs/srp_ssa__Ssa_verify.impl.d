lib/ssa/ssa_verify.ml: Block Cfg Fmt Hashtbl List Srp_alias Srp_ir Ssa_form
