(* Dead-check elimination (paper section 3.4: "redundant checks should be
   removed as much as possible").

   Promotion plants a check after *every* speculative kill a version
   crosses and an invalidation on every cold edge; many of those write a
   promotion temp that is never read again before its next redefinition.
   A standard backward liveness analysis over temps finds them; removal
   iterates because deleting a dead move can kill the check feeding it. *)

open Srp_ir

let removable (ins : Instr.instr) (live : Temp.Set.t) =
  match ins with
  | Instr.Check { dst; _ } | Instr.Sw_check { dst; _ } | Instr.Mov { dst; _ }
  | Instr.Invala { dst } ->
    not (Temp.Set.mem dst live)
  | Instr.Load _ | Instr.Store _ | Instr.Bin _ | Instr.Un _ | Instr.Call _
  | Instr.Alloc _ ->
    false

(* One liveness + sweep pass; returns true if anything was removed. *)
let sweep_once (f : Func.t) : bool =
  let cfg = Cfg.build f in
  let n = Cfg.num_nodes cfg in
  (* use/def per block *)
  let live_in = Array.make n Temp.Set.empty in
  let block_live_in i =
    (* backward within the block starting from successors' live-in *)
    let blk = Cfg.block cfg i in
    let live =
      List.fold_left
        (fun acc s -> Temp.Set.union acc live_in.(s))
        Temp.Set.empty (Cfg.succs cfg i)
    in
    let live = List.fold_left (fun acc t -> Temp.Set.add t acc) live
        (Instr.term_uses blk.Block.term)
    in
    List.fold_left
      (fun live ins ->
        let live = List.fold_left (fun a t -> Temp.Set.remove t a) live (Instr.defs ins) in
        List.fold_left (fun a t -> Temp.Set.add t a) live (Instr.uses ins))
      live
      (List.rev blk.Block.instrs)
  in
  let changed = ref true in
  while !changed do
    changed := false;
    for i = n - 1 downto 0 do
      let v = block_live_in i in
      if not (Temp.Set.equal v live_in.(i)) then begin
        live_in.(i) <- v;
        changed := true
      end
    done
  done;
  (* sweep, tracking liveness backwards through each block *)
  let removed = ref false in
  for i = 0 to n - 1 do
    let blk = Cfg.block cfg i in
    let live =
      List.fold_left
        (fun acc s -> Temp.Set.union acc live_in.(s))
        Temp.Set.empty (Cfg.succs cfg i)
    in
    let live =
      List.fold_left (fun acc t -> Temp.Set.add t acc) live
        (Instr.term_uses blk.Block.term)
    in
    let keep = ref [] in
    let live = ref live in
    List.iter
      (fun ins ->
        if removable ins !live then removed := true
        else begin
          keep := ins :: !keep;
          live := List.fold_left (fun a t -> Temp.Set.remove t a) !live (Instr.defs ins);
          live := List.fold_left (fun a t -> Temp.Set.add t a) !live (Instr.uses ins)
        end)
      (List.rev blk.Block.instrs);
    blk.Block.instrs <- !keep
  done;
  !removed

let run (f : Func.t) : unit =
  let budget = ref 10 in
  while sweep_once f && !budget > 0 do
    decr budget
  done
