lib/core/config.mli: Format Srp_profile
