lib/core/promote.ml: Cfg Check_cleanup Config Copy_prop Expr Func Hashtbl List Program Srp_alias Srp_ir Srp_profile Srp_ssa Ssapre
