lib/core/promote.mli: Config Srp_ir Srp_ssa Ssapre
