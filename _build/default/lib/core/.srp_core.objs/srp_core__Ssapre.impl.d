lib/core/ssapre.ml: Array Block Cfg Config Dominance Expr Func Hashtbl Instr Int Label List Loops Ops Queue Site Srp_ir Srp_profile Temp
