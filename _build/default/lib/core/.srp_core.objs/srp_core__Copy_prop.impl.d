lib/core/copy_prop.ml: Block Expr Func Instr List Ops Srp_ir Temp
