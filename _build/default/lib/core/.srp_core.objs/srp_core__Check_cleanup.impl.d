lib/core/check_cleanup.ml: Array Block Cfg Func Instr List Srp_ir Temp
