lib/core/expr.ml: Block Cfg Config Fmt Func Instr List Mem_ty Ops Program Srp_alias Srp_ir Srp_profile Srp_ssa Symbol Temp
