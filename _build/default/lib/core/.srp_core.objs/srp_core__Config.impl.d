lib/core/config.ml: Fmt Srp_profile
