(** Register promotion driver — the paper's primary contribution.

    Runs bottom-up rounds of per-expression SSAPRE over every function of a
    program, in place (paper section 3.2: [p] before [*p] before [**p]):
    round 1 promotes direct references; later rounds promote indirect
    references through address temps exposed by earlier rounds.  The alias
    analyses and mod/ref summaries are recomputed between rounds because
    each round manufactures new temps.

    After promotion the program contains multiple-definition temps plus
    [Check]/[Invala]/[Sw_check] pseudo-instructions; it is no longer
    interpretable by {!Srp_profile.Interp} but compiles via
    {!Srp_target.Codegen} and runs on {!Srp_machine.Machine}. *)

type result = {
  stats : Ssapre.stats;  (** whole-program promotion statistics *)
  per_func : (string * Ssapre.stats) list;
}

(** [run ~config prog] promotes every function of [prog] in place and
    returns the statistics.  Defaults to {!Config.baseline}. *)
val run : ?config:Config.t -> Srp_ir.Program.t -> result

(**/**)

val policy_of_config : Srp_ir.Program.t -> Config.t -> Srp_ssa.Spec_policy.t
